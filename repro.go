// Package repro is the public API of this reproduction of "Energy
// Efficient Packet Classification Hardware Accelerator" (Kennedy, Wang &
// Liu, IPDPS/IPPS 2008).
//
// It provides a small facade over the internal packages:
//
//   - generate ClassBench-style rulesets and packet traces
//     (GenerateRuleset, GenerateTrace);
//   - build the paper's modified HiCuts/HyperCuts search structure and
//     run it on the cycle-accurate accelerator model (BuildAccelerator,
//     Accelerator.Classify / Run);
//   - compare against the software baselines the paper uses
//     (NewSoftwareBaseline);
//   - regenerate every evaluation table (WriteAllTables).
//
// See examples/ for runnable walkthroughs and DESIGN.md for the system
// inventory.
package repro

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/rule"
	"repro/internal/sa1100"
)

// Re-exported primitive types.
type (
	// Packet is a 5-tuple packet header.
	Packet = rule.Packet
	// Rule is one classification rule.
	Rule = rule.Rule
	// RuleSet is a priority-ordered rule list.
	RuleSet = rule.RuleSet
	// Range is a closed interval within one header dimension.
	Range = rule.Range
)

// Algorithm selects the decision-tree algorithm.
type Algorithm = core.Algorithm

// Algorithm values.
const (
	HiCuts    = core.HiCuts
	HyperCuts = core.HyperCuts
)

// Target selects the simulated implementation technology.
type Target int

// Implementation targets with the paper's Table 5 operating points.
const (
	// TargetASIC is the 65 nm ASIC at 226 MHz.
	TargetASIC Target = iota
	// TargetFPGA is the Virtex5SX95T at 77 MHz.
	TargetFPGA
)

// GenerateRuleset produces an n-rule synthetic filter set in the style of
// the ClassBench seed named by profile: "acl1", "fw1" or "ipc1".
func GenerateRuleset(profile string, n int, seed int64) (RuleSet, error) {
	p, err := classbench.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(p, n, seed), nil
}

// GenerateTrace produces an n-packet header trace for rs (mostly packets
// matching rules, with Zipf-skewed rule popularity).
func GenerateTrace(rs RuleSet, n int, seed int64) []Packet {
	return classbench.GenerateTrace(rs, n, seed)
}

// Config tunes the accelerator build.
type Config struct {
	// Algorithm is HiCuts or HyperCuts (default HyperCuts, the paper's
	// best performer after modification).
	Algorithm Algorithm
	// Binth and Spfac follow the paper (§3); zero values select the
	// defaults used in its tables (binth 120, spfac 4).
	Binth, Spfac int
	// CompactLeaves selects the paper's speed=0 leaf packing (fully
	// contiguous, most memory-efficient). The default is speed=1,
	// which the paper's tables use.
	CompactLeaves bool
	// Target picks the simulated device (default ASIC).
	Target Target
}

// Accelerator is a built search structure loaded into the simulated
// hardware classifier.
type Accelerator struct {
	tree *core.Tree
	sim  *hwsim.Sim
	dev  hwsim.Device
}

// BuildAccelerator constructs the modified decision tree for rs, encodes
// it into 4800-bit memory words, and loads it into a simulated device.
func BuildAccelerator(rs RuleSet, cfg Config) (*Accelerator, error) {
	ccfg := core.DefaultConfig(cfg.Algorithm)
	if cfg.Binth > 0 {
		ccfg.Binth = cfg.Binth
	}
	if cfg.Spfac > 0 {
		ccfg.Spfac = cfg.Spfac
	}
	ccfg.Speed = 1
	if cfg.CompactLeaves {
		ccfg.Speed = 0
	}
	tree, err := core.Build(rs, ccfg)
	if err != nil {
		return nil, err
	}
	img, err := tree.Encode()
	if err != nil {
		return nil, fmt.Errorf("repro: structure built (%d words) but not encodable: %w", tree.Words(), err)
	}
	dev := hwsim.ASIC
	if cfg.Target == TargetFPGA {
		dev = hwsim.FPGA
	}
	sim, err := hwsim.New(img, dev)
	if err != nil {
		return nil, err
	}
	return &Accelerator{tree: tree, sim: sim, dev: dev}, nil
}

// Classify returns the highest-priority matching rule ID for p, or -1.
func (a *Accelerator) Classify(p Packet) int { return a.sim.ClassifyOne(p).Match }

// ClassifyDetailed additionally reports the lookup's latency in clock
// cycles and memory reads.
func (a *Accelerator) ClassifyDetailed(p Packet) (match, latencyCycles, memReads int) {
	r := a.sim.ClassifyOne(p)
	return r.Match, r.LatencyCycles, r.MemReads
}

// Stats summarizes a trace run on the accelerator.
type Stats = hwsim.Stats

// Run classifies a whole trace, returning per-packet matches and
// aggregate throughput/energy statistics.
func (a *Accelerator) Run(trace []Packet) ([]int, Stats) { return a.sim.Run(trace) }

// MemoryBytes is the search-structure size (words x 600 bytes).
func (a *Accelerator) MemoryBytes() int { return a.tree.MemoryBytes() }

// Words is the number of 4800-bit memory words used (device holds 1024).
func (a *Accelerator) Words() int { return a.tree.Words() }

// WorstCaseCycles is the guaranteed per-packet bound (Tables 4 and 8).
func (a *Accelerator) WorstCaseCycles() int { return a.tree.WorstCaseCycles() }

// GuaranteedPPS is the worst-case sustained throughput: the pipeline
// overlap hides one cycle (paper §4).
func (a *Accelerator) GuaranteedPPS() float64 {
	return hwsim.WorstCaseThroughputPPS(a.dev, a.tree.WorstCaseCycles())
}

// DeviceName names the simulated implementation target.
func (a *Accelerator) DeviceName() string { return a.dev.Name }

// Insert adds a rule at the lowest priority (ID must equal the current
// rule count) and reloads the accelerator memory, modelling the paper's
// §4 control-plane update path: the off-chip copy of the structure is
// patched, re-laid-out and written back through the load interface.
func (a *Accelerator) Insert(r Rule) error {
	if err := a.tree.Insert(r); err != nil {
		return err
	}
	return a.reload()
}

// Delete removes a rule by ID and reloads the accelerator memory.
func (a *Accelerator) Delete(id int) error {
	if err := a.tree.Delete(id); err != nil {
		return err
	}
	return a.reload()
}

// Degradation reports the fraction of leaves pushed past the build-time
// threshold by incremental updates; rebuild via BuildAccelerator when it
// exceeds the operator's tolerance.
func (a *Accelerator) Degradation() float64 { return a.tree.Degradation() }

func (a *Accelerator) reload() error {
	img, err := a.tree.Encode()
	if err != nil {
		return fmt.Errorf("repro: updated structure not encodable: %w", err)
	}
	sim, err := hwsim.New(img, a.dev)
	if err != nil {
		return err
	}
	a.sim = sim
	return nil
}

// Engine is the flat software classification engine: the accelerator's
// search structure compiled into contiguous pointer-free arrays (see
// internal/engine). Classify and ClassifyBatch allocate nothing per
// packet; all methods are safe for concurrent use. The engine is an
// immutable snapshot — rebuild it after Insert/Delete.
type Engine struct {
	e *engine.Engine
}

// SoftwareEngine compiles the accelerator's current search structure into
// a flat host-CPU engine, the production software fast path.
func (a *Accelerator) SoftwareEngine() *Engine {
	return &Engine{e: engine.Compile(a.tree)}
}

// Classify returns the highest-priority matching rule ID for p, or -1.
func (e *Engine) Classify(p Packet) int { return e.e.Classify(p) }

// ClassifyBatch classifies pkts[i] into out[i] with zero allocations; out
// must be at least as long as pkts.
func (e *Engine) ClassifyBatch(pkts []Packet, out []int32) { e.e.ClassifyBatch(pkts, out) }

// ParallelClassify shards the batch over up to workers goroutines
// (workers <= 0 selects GOMAXPROCS).
func (e *Engine) ParallelClassify(pkts []Packet, out []int32, workers int) {
	e.e.ParallelClassify(pkts, out, workers)
}

// MemoryBytes is the engine's flat-image footprint.
func (e *Engine) MemoryBytes() int { return e.e.MemoryBytes() }

// SoftwareBaseline is one of the paper's software comparison points
// running on the modelled StrongARM SA-1100.
type SoftwareBaseline struct {
	name string
	c    sa1100.TracedClassifier
}

// NewSoftwareBaseline builds a software classifier: "hicuts", "hypercuts"
// or "linear".
func NewSoftwareBaseline(kind string, rs RuleSet) (*SoftwareBaseline, error) {
	switch kind {
	case "hicuts":
		t, err := hicuts.Build(rs, hicuts.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return &SoftwareBaseline{kind, t}, nil
	case "hypercuts":
		t, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return &SoftwareBaseline{kind, t}, nil
	case "linear":
		return &SoftwareBaseline{kind, linear.New(rs)}, nil
	}
	return nil, fmt.Errorf("repro: unknown baseline %q (want hicuts, hypercuts or linear)", kind)
}

// Name returns the baseline's kind.
func (s *SoftwareBaseline) Name() string { return s.name }

// Classify returns the matching rule ID or -1.
func (s *SoftwareBaseline) Classify(p Packet) int {
	m, _ := s.c.ClassifyTraced(p, nil)
	return m
}

// Measure runs the trace on the SA-1100 cost model, returning throughput
// and energy statistics comparable with Accelerator.Run.
func (s *SoftwareBaseline) Measure(trace []Packet) sa1100.ClassStats {
	return sa1100.MeasureClassification(s.c, trace, sa1100.DefaultCosts())
}

// WriteAllTables regenerates every evaluation table of the paper (Tables
// 2-8 plus the §5.2/§5.3 headline claims) and writes them to w. Options
// zero value uses the paper's sizes; see internal/bench for knobs.
func WriteAllTables(w io.Writer, opts bench.Options) error {
	rows, err := bench.RunACL1(opts)
	if err != nil {
		return err
	}
	for _, t := range []*bench.Table{
		bench.Table2(rows), bench.Table3(rows), bench.Table5(),
		bench.Table6(rows), bench.Table7(rows), bench.Table8(rows),
	} {
		if _, err := fmt.Fprintln(w, t.Format()); err != nil {
			return err
		}
	}
	t4, err := bench.RunTable4(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, bench.Table4(t4).Format()); err != nil {
		return err
	}
	cl, err := bench.RunClaims(opts)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, bench.ClaimsTable(cl).Format())
	return err
}
