package repro

import (
	"testing"
)

// TestDeviceWordPatching pins the facade's lazy word-level device
// rewrite: updates queue their deltas, the next hardware-path use
// replays them through the simulated write interface (only dirty words),
// and the patched device memory stays byte-identical to a full
// re-encode — across plain updates, batches, and the recompile fallback.
func TestDeviceWordPatching(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{RecompileThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 500, 5)
	base := acc.DeviceWriteCycles()
	if base == 0 {
		t.Fatal("initial load must charge write cycles")
	}

	pool, err := GenerateRuleset("fw1", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		r := pool[i]
		r.ID = len(rs) + i
		if err := acc.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%3 == 2 {
			if err := acc.Delete(len(rs) + i - 1); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
		if i%10 != 9 {
			continue
		}
		// Touch the hardware path so the queued deltas flush, then
		// differentially verify the patched image.
		matches, _ := acc.Run(trace)
		if err := acc.LoadError(); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		acc.mu.Lock()
		err := acc.sim.VerifyImage(acc.tree)
		acc.mu.Unlock()
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		// And the device answers must agree with the software engine.
		eng := acc.SoftwareEngine()
		for j, p := range trace {
			if got := eng.Classify(p); got != matches[j] {
				t.Fatalf("update %d packet %d: device %d, engine %d", i, j, matches[j], got)
			}
		}
	}
	grown := acc.DeviceWriteCycles() - base
	words := acc.Words()
	if grown <= 0 {
		t.Fatal("updates charged no write cycles")
	}
	// ~80 updates must have cost far less than 80 full reloads.
	if grown > int64(40*words) {
		t.Fatalf("word-level patching charged %d cycles over churn; full reloads would be ~%d — not sublinear",
			grown, 80*words)
	}

	// The recompile fallback must resynchronize the image wholesale.
	acc.Recompile()
	if _, _ = acc.Run(trace); acc.LoadError() != nil {
		t.Fatal(acc.LoadError())
	}
	acc.mu.Lock()
	err = acc.sim.VerifyImage(acc.tree)
	acc.mu.Unlock()
	if err != nil {
		t.Fatalf("after recompile: %v", err)
	}
}

// TestDeviceWordPatchingWithBatches covers the batched update entry
// points feeding the same lazy queue.
func TestDeviceWordPatchingWithBatches(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HiCuts, RecompileThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := GenerateRuleset("ipc1", 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Rule, len(pool))
	for i := range pool {
		batch[i] = pool[i]
		batch[i].ID = len(rs) + i
	}
	if err := acc.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	ids := []int{len(rs), len(rs) + 5, len(rs) + 17}
	if err := acc.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 300, 17)
	acc.Run(trace)
	if err := acc.LoadError(); err != nil {
		t.Fatal(err)
	}
	acc.mu.Lock()
	err = acc.sim.VerifyImage(acc.tree)
	acc.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}
