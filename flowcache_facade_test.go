package repro

import (
	"bufio"
	"bytes"
	"strconv"
	"testing"

	"repro/internal/rule"
)

// TestAcceleratorFlowCacheExactUnderUpdates is the facade-level cache
// contract: with Config.CacheSize set, Classify and ClassifyBatch stay
// packet-exact against the reference ruleset semantics across live
// Insert/Delete (every update bumps the epoch and invalidates by stamp),
// and CacheStats shows the cache actually working.
func TestAcceleratorFlowCacheExactUnderUpdates(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 250, 91)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts, CacheSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	full := append(RuleSet{}, rs...)
	trace := GenerateFlowTrace(rs, 3000, 256, 8, 92)

	check := func(stage string) {
		t.Helper()
		// Twice: the first pass populates, the second must hit and still
		// be exact.
		for pass := 0; pass < 2; pass++ {
			for i, p := range trace {
				if got, want := acc.Classify(p), full.Match(p); got != want {
					t.Fatalf("%s pass %d packet %d: cached Classify=%d want %d", stage, pass, i, got, want)
				}
			}
		}
		out := make([]int32, len(trace))
		acc.ClassifyBatch(trace, out)
		for i, p := range trace {
			if want := full.Match(p); int(out[i]) != want {
				t.Fatalf("%s batch packet %d: %d want %d", stage, i, out[i], want)
			}
		}
	}
	check("initial")

	extra, err := GenerateRuleset("ipc1", 30, 93)
	if err != nil {
		t.Fatal(err)
	}
	for i := range extra {
		r := extra[i]
		r.ID = len(full)
		if err := acc.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		full = append(full, r)
	}
	check("after inserts")

	if err := acc.Delete(3); err != nil {
		t.Fatal(err)
	}
	full[3].F[rule.DimProto] = Range{Lo: 1, Hi: 0} // match nothing
	check("after delete")

	st := acc.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.StaleEvictions == 0 || st.Occupied == 0 {
		t.Errorf("cache never exercised: %+v", st)
	}
	if st.Capacity < 4096 {
		t.Errorf("capacity %d < configured 4096", st.Capacity)
	}
	acc.WaitMaintenance()
}

// TestAcceleratorCacheDisabled pins the zero-value behaviour: no cache,
// zero stats, ClassifyBatch still works (uncached fallthrough).
func TestAcceleratorCacheDisabled(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 100, 94)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HiCuts})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateFlowTrace(rs, 500, 64, 8, 95)
	out := make([]int32, len(trace))
	acc.ClassifyBatch(trace, out)
	for i, p := range trace {
		if want := rs.Match(p); int(out[i]) != want {
			t.Fatalf("packet %d: %d want %d", i, out[i], want)
		}
	}
	if st := acc.CacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache reported stats %+v", st)
	}
}

// TestAcceleratorInsertBatch: a burst lands as ONE epoch, with exact
// semantics, and a bad rule mid-burst publishes the valid prefix.
func TestAcceleratorInsertBatch(t *testing.T) {
	rs, err := GenerateRuleset("fw1", 200, 96)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts, CacheSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := GenerateRuleset("acl1", 25, 97)
	if err != nil {
		t.Fatal(err)
	}
	full := append(RuleSet{}, rs...)
	for i := range burst {
		burst[i].ID = len(rs) + i
		full = append(full, burst[i])
	}
	e0 := acc.Epoch()
	if err := acc.InsertBatch(burst); err != nil {
		t.Fatal(err)
	}
	if e := acc.Epoch(); e != e0+1 {
		t.Fatalf("burst of %d advanced epoch %d -> %d, want one step", len(burst), e0, e)
	}
	trace := GenerateFlowTrace(full, 2500, 200, 8, 98)
	for i, p := range trace {
		if got, want := acc.Classify(p), full.Match(p); got != want {
			t.Fatalf("packet %d after batch: %d want %d", i, got, want)
		}
	}

	// DeleteBatch: one epoch for the whole burst.
	ids := []int{len(rs), len(rs) + 1, len(rs) + 2}
	e1 := acc.Epoch()
	if err := acc.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	if e := acc.Epoch(); e != e1+1 {
		t.Fatalf("delete burst advanced epoch %d -> %d, want one step", e1, e)
	}
	for _, id := range ids {
		full[id].F[rule.DimProto] = Range{Lo: 1, Hi: 0}
	}
	for i, p := range trace {
		if got, want := acc.Classify(p), full.Match(p); got != want {
			t.Fatalf("packet %d after batch delete: %d want %d", i, got, want)
		}
	}

	// A stale-ID rule mid-batch: the valid prefix must land, the error
	// must surface, and semantics must stay consistent.
	bad := burst[0] // ID already taken
	okRule := rule.New(len(full), 1<<24, 8, 2<<24, 8,
		Range{Lo: 80, Hi: 80}, Range{Lo: 443, Hi: 443}, 6, false)
	if err := acc.InsertBatch([]Rule{okRule, bad}); err == nil {
		t.Fatal("batch with stale-ID rule succeeded")
	}
	full = append(full, okRule)
	for i, p := range trace {
		if got, want := acc.Classify(p), full.Match(p); got != want {
			t.Fatalf("packet %d after failed batch: %d want %d", i, got, want)
		}
	}
	acc.WaitMaintenance()
}

// TestClassifyStreamCached: the streaming facade through the cache stays
// exact and reports hits.
func TestClassifyStreamCached(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 150, 99)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HiCuts, CacheSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateFlowTrace(rs, 2*StreamBatch+500, 512, 16, 100)
	var in bytes.Buffer
	if err := rule.WriteTrace(&in, trace); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := acc.ClassifyStream(&in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(trace)) {
		t.Fatalf("streamed %d of %d", n, len(trace))
	}
	sc := bufio.NewScanner(&out)
	for i := 0; sc.Scan(); i++ {
		got, _ := strconv.Atoi(sc.Text())
		if want := rs.Match(trace[i]); got != want {
			t.Fatalf("stream packet %d: %d want %d", i, got, want)
		}
	}
	if st := acc.CacheStats(); st.Hits == 0 {
		t.Errorf("flow-locality stream produced no cache hits: %+v", st)
	}
}
