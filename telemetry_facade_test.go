package repro

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// Facade-level telemetry: the always-on recorder must stay internally
// consistent while classification and control-plane churn run
// concurrently, and the HTTP plane started by Config.TelemetryAddr must
// serve the same numbers live.

func telemetryAccel(t *testing.T, cacheSize int, addr string) (*Accelerator, RuleSet) {
	t.Helper()
	rs, err := GenerateRuleset("acl1", 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildAccelerator(rs, Config{CacheSize: cacheSize, TelemetryAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a, rs
}

// The build itself must be on record before anything else happens.
func TestTelemetryRecordsBuild(t *testing.T) {
	a, rs := telemetryAccel(t, 0, "")
	evs := a.TelemetryEvents()
	if len(evs) == 0 || evs[0].Kind != telemetry.EvBuild {
		t.Fatalf("first event = %+v, want EvBuild", evs)
	}
	if evs[0].V2 != int64(len(rs)) {
		t.Errorf("build event rules = %d, want %d", evs[0].V2, len(rs))
	}
	if evs[0].V1 <= 0 {
		t.Errorf("build event nanos = %d, want > 0", evs[0].V1)
	}
	s := a.Telemetry()
	if s.Epoch != 0 || s.Packets != 0 || s.EpochPublishes != 0 {
		t.Errorf("fresh snapshot = %+v, want zero counters at epoch 0", s)
	}
}

// Snapshot-during-churn differential: classification through the cache
// races a control-plane insert storm; afterwards the counters must add
// up exactly — cache hits+misses == packets probed, telemetry packet
// count == packets classified, epochs monotone in the event stream, and
// the snapshot's epoch equal to the accelerator's.
func TestTelemetryConsistentUnderChurn(t *testing.T) {
	a, rs := telemetryAccel(t, 1<<14, "")
	trace := GenerateFlowTrace(rs, 4096, 300, 16, 12)
	out := make([]int32, len(trace))

	const classifyRounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < classifyRounds; i++ {
			a.ClassifyBatch(trace, out)
		}
	}()
	pool, err := GenerateRuleset("fw1", 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		r := pool[i]
		r.ID = len(rs) + i
		if err := a.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	a.WaitMaintenance()

	s := a.Telemetry()
	if want := uint64(classifyRounds * len(trace)); s.Packets != want {
		t.Errorf("telemetry packets = %d, want %d", s.Packets, want)
	}
	if s.Batches != classifyRounds {
		t.Errorf("telemetry batches = %d, want %d", s.Batches, classifyRounds)
	}
	if got, want := s.Epoch, a.Epoch(); got != want {
		t.Errorf("snapshot epoch = %d, accelerator epoch = %d", got, want)
	}
	if s.DeltasApplied < uint64(len(pool)) && s.PatchFailures == 0 && s.Recompiles == 0 {
		t.Errorf("deltas applied = %d, want >= %d (or recompile fallbacks on record)",
			s.DeltasApplied, len(pool))
	}
	// Every cache probe is accounted a hit or a miss, nothing lost.
	if got, want := s.Cache.Hits+s.Cache.Misses, s.Packets; got != want {
		t.Errorf("cache hits+misses = %d, want == packets %d", got, want)
	}
	if s.PatchFailures != 0 {
		t.Errorf("patch failures = %d, want 0 (delta protocol regression)", s.PatchFailures)
	}

	// Event-stream invariants: seq strictly increasing, timestamps and
	// epochs non-decreasing, every publish's epoch increments by one.
	evs := s.Events
	if uint64(len(evs)) < s.EpochPublishes-s.EventsDropped {
		t.Fatalf("only %d events retained for %d publishes (dropped %d)",
			len(evs), s.EpochPublishes, s.EventsDropped)
	}
	var lastSeq, lastPublishEpoch uint64
	var lastNanos int64
	for i, e := range evs {
		if e.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d after %d (not strictly increasing)", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Nanos < lastNanos {
			t.Fatalf("event %d: nanos %d after %d (clock ran backwards)", i, e.Nanos, lastNanos)
		}
		lastNanos = e.Nanos
		if e.Kind == telemetry.EvEpochPublish {
			if lastPublishEpoch != 0 && e.Epoch != lastPublishEpoch+1 {
				t.Fatalf("publish epoch %d after %d (not monotone +1)", e.Epoch, lastPublishEpoch)
			}
			lastPublishEpoch = e.Epoch
		}
	}
	if lastPublishEpoch != s.Epoch {
		t.Errorf("last published epoch in events = %d, snapshot epoch = %d", lastPublishEpoch, s.Epoch)
	}
	if s.ClassifyP50Ns <= 0 || s.ClassifyP99Ns < s.ClassifyP50Ns {
		t.Errorf("classify quantiles p50=%d p99=%d, want 0 < p50 <= p99",
			s.ClassifyP50Ns, s.ClassifyP99Ns)
	}
}

// Recompile lifecycle lands on the flight recorder: force one and check
// the trip/start/done triple and the counters that must move with it.
func TestTelemetryRecordsRecompile(t *testing.T) {
	a, _ := telemetryAccel(t, 0, "")
	before := a.Telemetry()
	a.Recompile()
	s := a.Telemetry()
	if s.Recompiles != before.Recompiles+1 {
		t.Fatalf("recompiles = %d, want %d", s.Recompiles, before.Recompiles+1)
	}
	var start, done bool
	for _, e := range s.Events {
		switch e.Kind {
		case telemetry.EvRecompileStart:
			start = true
		case telemetry.EvRecompileDone:
			done = true
			if e.V1 <= 0 {
				t.Errorf("recompile-done nanos = %d, want > 0", e.V1)
			}
		}
	}
	if !start || !done {
		t.Errorf("recompile events start=%v done=%v, want both", start, done)
	}
	if s.Epoch != before.Epoch+1 {
		t.Errorf("epoch after recompile = %d, want %d", s.Epoch, before.Epoch+1)
	}
}

// Config.TelemetryAddr must serve live, consistent numbers during
// churn: scrape /metrics between update bursts and check the families
// and the monotone packet counter.
func TestTelemetryHTTPDuringChurn(t *testing.T) {
	a, rs := telemetryAccel(t, 1<<12, "127.0.0.1:0")
	addr := a.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty with TelemetryAddr config set")
	}
	trace := GenerateTrace(rs, 2048, 14)
	out := make([]int32, len(trace))

	scrape := func() string {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metricValue := func(body, name string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
					t.Fatalf("unparseable %s line %q", name, line)
				}
				return v
			}
		}
		t.Fatalf("metric %s not in scrape", name)
		return 0
	}

	var lastPackets float64
	pool, err := GenerateRuleset("ipc1", 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		a.ClassifyBatch(trace, out)
		r := pool[i]
		r.ID = len(rs) + i
		if err := a.Insert(r); err != nil {
			t.Fatal(err)
		}
		body := scrape()
		p := metricValue(body, "repro_packets_total")
		if p < lastPackets {
			t.Fatalf("repro_packets_total went backwards: %v after %v", p, lastPackets)
		}
		lastPackets = p
		if e := metricValue(body, "repro_epoch"); e != float64(a.Epoch()) {
			// The epoch may advance between scrape and check only
			// forward; re-read to confirm monotonicity rather than flake.
			if e > float64(a.Epoch()) {
				t.Fatalf("scraped epoch %v ahead of accelerator %d", e, a.Epoch())
			}
		}
	}
	a.WaitMaintenance()
	body := scrape()
	for _, fam := range []string{
		"repro_packets_total", "repro_epoch_publishes_total",
		"repro_deltas_applied_total", "repro_cache_hits_total",
		"repro_tree_degradation", "repro_snapshot_age_seconds",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("scrape missing family %s", fam)
		}
	}
	if got := metricValue(body, "repro_epoch"); got != float64(a.Epoch()) {
		t.Errorf("final scraped epoch %v != accelerator epoch %d", got, a.Epoch())
	}
	// Consistency between the two exposition surfaces.
	s := a.Telemetry()
	if got := metricValue(body, "repro_packets_total"); got != float64(s.Packets) {
		t.Errorf("scraped packets %v != snapshot %d", got, s.Packets)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry server still answering after Close")
	}
}

// Device writes reach the flight recorder through the lazy hwsim path.
func TestTelemetryRecordsDeviceWrites(t *testing.T) {
	a, rs := telemetryAccel(t, 0, "")
	r := rs[0]
	r.ID = len(rs)
	if err := a.Insert(r); err != nil {
		t.Fatal(err)
	}
	a.DeviceWriteCycles() // flushes the queued delta into the device
	var deviceWrites int
	for _, e := range a.TelemetryEvents() {
		if e.Kind == telemetry.EvDeviceWrite {
			deviceWrites++
			if e.V1 <= 0 {
				t.Errorf("device write cycles = %d, want > 0", e.V1)
			}
		}
	}
	if deviceWrites == 0 {
		t.Error("no EvDeviceWrite on record after DeviceWriteCycles")
	}
}
