package repro

import (
	"testing"

	"repro/internal/rule"
)

func TestAcceleratorIncrementalUpdates(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 200, 21)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts})
	if err != nil {
		t.Fatal(err)
	}

	// Insert a handful of new rules and verify semantics after each.
	extra, err := GenerateRuleset("ipc1", 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	full := append(RuleSet{}, rs...)
	for i := range extra {
		r := extra[i]
		r.ID = len(full)
		if err := acc.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		full = append(full, r)
	}
	trace := GenerateTrace(full, 2500, 23)
	for i, p := range trace {
		if got, want := acc.Classify(p), full.Match(p); got != want {
			t.Fatalf("after inserts, packet %d: %d vs %d", i, got, want)
		}
	}

	// Delete one and re-verify.
	if err := acc.Delete(5); err != nil {
		t.Fatal(err)
	}
	expect := func(p Packet) int {
		for i := range full {
			if full[i].ID == 5 {
				continue
			}
			if full[i].Matches(p) {
				return full[i].ID
			}
		}
		return -1
	}
	for i, p := range trace {
		if got, want := acc.Classify(p), expect(p); got != want {
			t.Fatalf("after delete, packet %d: %d vs %d", i, got, want)
		}
	}

	if acc.Degradation() < 0 || acc.Degradation() > 1 {
		t.Errorf("degradation %.3f out of range", acc.Degradation())
	}

	// Insert with a wrong ID must fail cleanly.
	bad := rule.New(3, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	if err := acc.Insert(bad); err == nil {
		t.Error("insert with stale ID accepted")
	}
}
