package repro

import (
	"bufio"
	"bytes"
	"strconv"
	"sync"
	"testing"

	"repro/internal/rule"
)

func TestAcceleratorIncrementalUpdates(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 200, 21)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts})
	if err != nil {
		t.Fatal(err)
	}

	// Insert a handful of new rules and verify semantics after each.
	extra, err := GenerateRuleset("ipc1", 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	full := append(RuleSet{}, rs...)
	for i := range extra {
		r := extra[i]
		r.ID = len(full)
		if err := acc.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		full = append(full, r)
	}
	trace := GenerateTrace(full, 2500, 23)
	for i, p := range trace {
		if got, want := acc.Classify(p), full.Match(p); got != want {
			t.Fatalf("after inserts, packet %d: %d vs %d", i, got, want)
		}
	}

	// Delete one and re-verify.
	if err := acc.Delete(5); err != nil {
		t.Fatal(err)
	}
	expect := func(p Packet) int {
		for i := range full {
			if full[i].ID == 5 {
				continue
			}
			if full[i].Matches(p) {
				return full[i].ID
			}
		}
		return -1
	}
	for i, p := range trace {
		if got, want := acc.Classify(p), expect(p); got != want {
			t.Fatalf("after delete, packet %d: %d vs %d", i, got, want)
		}
	}

	if acc.Degradation() < 0 || acc.Degradation() > 1 {
		t.Errorf("degradation %.3f out of range", acc.Degradation())
	}

	// Insert with a wrong ID must fail cleanly.
	bad := rule.New(3, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	if err := acc.Insert(bad); err == nil {
		t.Error("insert with stale ID accepted")
	}
	acc.WaitMaintenance()
}

// TestAcceleratorAutoRecompile is the worked example of the degradation
// threshold. Config.RecompileThreshold is the fraction of the leaf table
// an operator lets incremental updates degrade (overgrown or orphaned
// leaves — see Accelerator.Degradation, plus engine arena garbage via
// GarbageRatio) before the facade folds the accumulated patches into a
// fresh structure in the background. The default,
// DefaultRecompileThreshold (0.25), recompacts once a quarter of the
// table has drifted; this test uses a tight 5% threshold so a burst of
// broad inserts visibly trips the trigger, while classification results
// stay exact throughout. The rebuild reclaims orphaned leaves and arena
// garbage; leaves grown past Binth survive it (re-cutting them needs a
// fresh BuildAccelerator), so re-triggering uses drift above the
// post-rebuild floor, not the absolute level — sustained churn pays one
// rebuild per threshold's worth of new drift, never one per update.
func TestAcceleratorAutoRecompile(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 300, 41)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts, RecompileThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	full := append(RuleSet{}, rs...)
	// Broad port-range rules replicate into many leaves: the fastest way
	// to degrade a built structure.
	peak := 0.0
	for i := 0; i < 40; i++ {
		r := rule.New(len(full), 0, 0, 0, 0,
			Range{Lo: uint32(i), Hi: 65535}, rule.FullRange(rule.DimDstPort), 0, true)
		if err := acc.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		full = append(full, r)
		if d := acc.Degradation(); d > peak {
			peak = d
		}
	}
	if peak < 0.05 {
		t.Fatalf("broad inserts only degraded to %.3f; the 0.05 trigger never armed", peak)
	}
	acc.WaitMaintenance()
	// The background rebuild must have compacted the drift (orphans and
	// garbage go; only irreducible overgrowth may remain)...
	if deg := acc.Degradation(); deg >= peak {
		t.Errorf("degradation %.3f not reduced from peak %.3f by the rebuild", deg, peak)
	}
	// ...bumped the epoch past the per-update increments alone...
	if e := acc.Epoch(); e <= 40 {
		t.Errorf("epoch %d implies no recompile swap landed", e)
	}
	// ...and preserved semantics exactly.
	for i, p := range GenerateTrace(full, 2000, 42) {
		if got, want := acc.SoftwareEngine().Classify(p), full.Match(p); got != want {
			t.Fatalf("packet %d after recompile: %d vs %d", i, got, want)
		}
	}
}

// TestClassifyStreamDuringUpdates streams a trace while rules are being
// inserted concurrently: the stream must keep classifying (updates land
// between batches) and every emitted ID must be valid for some epoch the
// stream could have observed.
func TestClassifyStreamDuringUpdates(t *testing.T) {
	rs, err := GenerateRuleset("fw1", 250, 51)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HiCuts})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := GenerateRuleset("acl1", 30, 52)
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 3*StreamBatch+100, 53)
	var in bytes.Buffer
	if err := rule.WriteTrace(&in, trace); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range extra {
			r := extra[i]
			r.ID = len(rs) + i
			if err := acc.Insert(r); err != nil {
				t.Errorf("concurrent insert %d: %v", i, err)
				return
			}
		}
	}()

	var out bytes.Buffer
	n, err := acc.ClassifyStream(&in, &out)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	acc.WaitMaintenance()
	if n != int64(len(trace)) {
		t.Fatalf("stream classified %d of %d packets", n, len(trace))
	}
	sc := bufio.NewScanner(&out)
	lines := 0
	maxID := len(rs) + len(extra)
	for sc.Scan() {
		id, err := strconv.Atoi(sc.Text())
		if err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if id < -1 || id >= maxID {
			t.Fatalf("line %d: impossible rule ID %d", lines, id)
		}
		lines++
	}
	if lines != len(trace) {
		t.Fatalf("stream wrote %d lines for %d packets", lines, len(trace))
	}

	// Quiescent semantics: a fresh stream over the same trace now must
	// match the full ruleset exactly.
	full := append(RuleSet{}, rs...)
	for i := range extra {
		r := extra[i]
		r.ID = len(rs) + i
		full = append(full, r)
	}
	in.Reset()
	out.Reset()
	if err := rule.WriteTrace(&in, trace); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.ClassifyStream(&in, &out); err != nil {
		t.Fatal(err)
	}
	sc = bufio.NewScanner(&out)
	for i := 0; sc.Scan(); i++ {
		if got, _ := strconv.Atoi(sc.Text()); got != full.Match(trace[i]) {
			t.Fatalf("quiescent stream packet %d: %d vs %d", i, got, full.Match(trace[i]))
		}
	}
}

// TestAcceleratorDeviceOverflowFallback grows the structure past the
// simulated device's 1024-word memory (auto-recompile disabled with a
// negative threshold) and checks the degraded mode is fully observable
// and still exact: LoadError reports the overflow, Classify/Run answer
// from the logical tree, and Run's statistics carry the analytical
// Eq. 5/7 quantities instead of zeros.
func TestAcceleratorDeviceOverflowFallback(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 1800, 71)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts, RecompileThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	full := append(RuleSet{}, rs...)
	for i := 0; acc.LoadError() == nil; i++ {
		if i > 400 {
			t.Skip("could not outgrow the device in 400 broad inserts")
		}
		r := rule.New(len(full), 0, 0, 0, 0,
			Range{Lo: 0, Hi: 65535}, rule.FullRange(rule.DimDstPort), 0, true)
		if err := acc.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		full = append(full, r)
	}
	if acc.Words() <= 1024 {
		t.Fatalf("LoadError set at %d words (device holds 1024)", acc.Words())
	}
	if err := acc.PatchError(); err != nil {
		t.Fatalf("patch pipeline failed during growth: %v", err)
	}
	trace := GenerateTrace(full, 1500, 72)
	matches, st := acc.Run(trace)
	if st.Packets != int64(len(trace)) || st.PacketsPerSecond <= 0 ||
		st.AvgCyclesPerPacket <= 0 || st.EnergyPerPacketJ <= 0 {
		t.Fatalf("fallback Run stats empty: %+v", st)
	}
	for i, p := range trace {
		if want := full.Match(p); matches[i] != want || acc.Classify(p) != want {
			t.Fatalf("fallback packet %d: run=%d classify=%d want=%d", i, matches[i], acc.Classify(p), want)
		}
	}
	// Recompacting cannot shrink below the device either (the ruleset
	// grew), but the condition must stay visible, not panic.
	acc.Recompile()
	if acc.LoadError() == nil && acc.Words() > 1024 {
		t.Error("LoadError cleared while structure still exceeds the device")
	}
}
