package repro

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/image"
	"repro/internal/rule"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Facade-level tests of the engine-image cold-start path (SaveImage /
// Config.RestorePath), the idempotent-Close contract, the scan-kernel
// fallback observability, and the pcap Skipped plumbing.

// classifyAll runs the software batch path over trace.
func classifyAll(a *Accelerator, trace []Packet) []int32 {
	out := make([]int32, len(trace))
	a.ClassifyBatch(trace, out)
	return out
}

func saveImageFile(t *testing.T, a *Accelerator) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "engine.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SaveImage(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// A restored accelerator must classify identically to the one that
// saved the image — immediately (serving from the restored engine while
// the tree rebuilds) and after the background build reconciles.
func TestSaveImageRestore(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 500, 21)
	if err != nil {
		t.Fatal(err)
	}
	src, err := BuildAccelerator(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	path := saveImageFile(t, src)
	trace := GenerateTrace(rs, 4096, 22)
	want := classifyAll(src, trace)

	dst, err := BuildAccelerator(rs, Config{RestorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	// Before the background tree build completes the restored engine is
	// already serving; Telemetry must not block on the rebuild either.
	got := classifyAll(dst, trace)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored engine: packet %d classified %d, want %d", i, got[i], want[i])
		}
	}
	_ = dst.Telemetry()

	dst.WaitMaintenance()
	// Fresh build of the same rs: layouts are identical, so the restored
	// engine must still be the serving epoch (no spurious swap).
	if dst.Epoch() != 0 {
		t.Errorf("identical-layout restore swapped epochs: epoch = %d, want 0", dst.Epoch())
	}
	got = classifyAll(dst, trace)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after tree rebuild: packet %d classified %d, want %d", i, got[i], want[i])
		}
	}
	// The control plane is live: updates and the hardware path work.
	extra, err := GenerateRuleset("fw1", 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	for i := range extra {
		extra[i].ID = len(rs) + i
	}
	if err := dst.InsertBatch(extra); err != nil {
		t.Fatalf("InsertBatch on restored accelerator: %v", err)
	}
	if err := src.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	want, got = classifyAll(src, trace), classifyAll(dst, trace)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after post-restore updates: packet %d classified %d, want %d", i, got[i], want[i])
		}
	}
	if m, s := dst.Run(trace[:64]); len(m) != 64 || s.Packets != 64 {
		t.Fatalf("hardware path after restore: %d matches, stats %+v", len(m), s)
	}
	if dst.Words() == 0 || dst.MemoryBytes() == 0 {
		t.Error("tree metrics zero after the background rebuild finished")
	}
}

// A snapshot taken after churn restores to a layout the fresh build does
// not produce: the reconcile must swap the compiled engine in, and
// classification must agree with the source throughout.
func TestSaveImageRestoreAfterChurn(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 400, 31)
	if err != nil {
		t.Fatal(err)
	}
	src, err := BuildAccelerator(rs, Config{RecompileThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	pool, err := GenerateRuleset("ipc1", 60, 32)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append(RuleSet{}, rs...), pool...)
	for i := range pool {
		pool[i].ID = len(rs) + i
		if err := src.Insert(pool[i]); err != nil {
			t.Fatal(err)
		}
	}
	path := saveImageFile(t, src)
	trace := GenerateTrace(full, 4096, 33)
	want := classifyAll(src, trace)

	for i := range full {
		full[i].ID = i
	}
	dst, err := BuildAccelerator(full, Config{RestorePath: path, RecompileThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	got := classifyAll(dst, trace) // pre-reconcile: the churned image serves
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("churned restore (pre-reconcile): packet %d = %d, want %d", i, got[i], want[i])
		}
	}
	dst.WaitMaintenance()
	if dst.Epoch() == 0 {
		t.Error("churned snapshot vs fresh build: expected a reconcile swap, epoch still 0")
	}
	got = classifyAll(dst, trace)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("churned restore (post-reconcile): packet %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// Restore must fail closed — missing file, corrupt image — with a typed
// error from the image layer where applicable.
func TestRestoreFailsClosedFacade(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 200, 41)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAccelerator(rs, Config{RestorePath: filepath.Join(t.TempDir(), "absent.img")}); err == nil {
		t.Fatal("restore from a missing file succeeded")
	}
	src, err := BuildAccelerator(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	path := saveImageFile(t, src)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	bad := filepath.Join(t.TempDir(), "bad.img")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = BuildAccelerator(rs, Config{RestorePath: bad})
	if err == nil {
		t.Fatal("restore of a corrupt image succeeded")
	}
	var fe *image.FormatError
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("restore error %q does not name the image path", err)
	}
	if !errors.As(err, &fe) {
		t.Errorf("restore error %T is not a *image.FormatError", err)
	}
}

// Close must be idempotent and safe against concurrent classification,
// in-flight background recompiles, and telemetry scrapes. Run with
// -race this also shakes out the maint.Add-vs-Wait ordering.
func TestCloseIdempotentConcurrent(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 400, 51)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildAccelerator(rs, Config{
		TelemetryAddr:      "127.0.0.1:0",
		CacheSize:          1 << 10,
		RecompileThreshold: 0.01, // trip background recompiles eagerly
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := a.TelemetryAddr()
	trace := GenerateTrace(rs, 512, 52)
	out := make([]int32, len(trace))

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Classification keeps running across Close (documented as valid).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			mine := make([]int32, len(trace))
			for i := 0; i < 50; i++ {
				a.ClassifyBatch(trace, mine)
				_ = a.Telemetry()
			}
		}()
	}
	// Churn that trips maybeRecompileLocked while Close runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		pool, err := GenerateRuleset("fw1", 40, 53)
		if err != nil {
			return
		}
		for i := range pool {
			pool[i].ID = len(rs) + i
			if a.Insert(pool[i]) != nil {
				return
			}
		}
	}()
	// Scrapes racing the server shutdown: errors are expected once the
	// listener dies, data races are not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// The contract under test: many concurrent Closes, one result.
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = a.Close()
		}(i)
	}
	close(start)
	wg.Wait()
	for i, e := range errs {
		if e != errs[0] {
			t.Errorf("Close call %d returned %v, call 0 returned %v", i, e, errs[0])
		}
	}
	if err := a.Close(); err != errs[0] {
		t.Errorf("post-race Close returned %v, want the original %v", err, errs[0])
	}
	// Still serving after Close, per the documented contract.
	a.ClassifyBatch(trace, out)
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry listener still serving after Close")
	}
}

// An unsatisfiable REPRO_SCAN_KERNEL must keep working (silent-continue)
// but leave a visible trail: the fallback counter on /metrics and a
// kernel_fallback flight-recorder event. The env override is resolved at
// process init, so the scenario runs in a child test process.
func TestKernelFallbackTelemetry(t *testing.T) {
	if os.Getenv("REPRO_KERNEL_FALLBACK_CHILD") == "1" {
		runKernelFallbackChild(t)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	cmd := exec.Command(exe, "-test.run", "TestKernelFallbackTelemetry$", "-test.v")
	cmd.Env = append(os.Environ(),
		"REPRO_KERNEL_FALLBACK_CHILD=1",
		"REPRO_SCAN_KERNEL=definitely-not-a-kernel",
	)
	outb, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, outb)
	}
	if !bytes.Contains(outb, []byte("PASS")) {
		t.Fatalf("child did not pass:\n%s", outb)
	}
	// The degrade is logged once at init (satellite contract: observable,
	// not silent).
	if !bytes.Contains(outb, []byte("not satisfiable")) {
		t.Errorf("child stderr lacks the one-time fallback log:\n%s", outb)
	}
}

func runKernelFallbackChild(t *testing.T) {
	if engine.KernelFallback() == "" {
		t.Fatal("engine.KernelFallback() empty despite bogus REPRO_SCAN_KERNEL")
	}
	rs, err := GenerateRuleset("acl1", 100, 61)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildAccelerator(rs, Config{TelemetryAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("silent-continue broken: BuildAccelerator failed under bogus override: %v", err)
	}
	defer a.Close()
	// Classification still works on the probed default kernel.
	_ = a.SoftwareEngine().Classify(GenerateTrace(rs, 1, 62)[0])
	found := false
	for _, e := range a.TelemetryEvents() {
		if e.Kind == telemetry.EvKernelFallback {
			found = true
		}
	}
	if !found {
		t.Error("no kernel_fallback event in the flight recorder")
	}
	resp, err := http.Get("http://" + a.TelemetryAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("repro_scan_kernel_fallbacks_total 1")) {
		t.Errorf("/metrics lacks repro_scan_kernel_fallbacks_total 1:\n%s", body)
	}
}

// appendGarbagePcapRecords appends n syntactically valid pcap records
// whose frames are not parseable IPv4-over-Ethernet (an ARP ethertype
// and a truncated runt, alternating) — they must be Skipped, not errors.
func appendGarbagePcapRecords(buf *bytes.Buffer, n int) {
	for i := 0; i < n; i++ {
		var frame []byte
		if i%2 == 0 {
			frame = make([]byte, 40)
			binary.BigEndian.PutUint16(frame[12:14], 0x0806) // ARP
		} else {
			frame = []byte{0x02, 0x02, 0x02, 0x02, 0x02} // runt: shorter than an Ethernet header
		}
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
		buf.Write(rec[:])
		buf.Write(frame)
	}
}

// A mixed valid/garbage capture: the facade stream stats must report
// exactly the undeliverable records as Skipped and classify the rest.
func TestClassifyStreamPcapSkipped(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 300, 71)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildAccelerator(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	trace := GenerateTrace(rs, 600, 72)
	for i := range trace {
		if trace[i].Proto != 6 && trace[i].Proto != 17 {
			trace[i].Proto = 6 // pcap framing zeroes ports for other protocols
		}
	}
	var capture bytes.Buffer
	if err := wire.WritePcap(&capture, trace); err != nil {
		t.Fatal(err)
	}
	const garbage = 37
	appendGarbagePcapRecords(&capture, garbage)
	// Interleave a second valid tail after the garbage, so Skipped is
	// counted mid-stream, not just at EOF.
	if err := writePcapRecordsOnly(&capture, trace[:100]); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	st, err := a.ClassifyStreamStats(bytes.NewReader(capture.Bytes()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Binary {
		t.Error("pcap capture not detected as binary framing")
	}
	if want := int64(len(trace) + 100); st.Packets != want {
		t.Fatalf("stream delivered %d packets, want %d", st.Packets, want)
	}
	if st.Skipped != garbage {
		t.Fatalf("StreamStats.Skipped = %d, want %d", st.Skipped, garbage)
	}
	if lines := bytes.Count(out.Bytes(), []byte{'\n'}); int64(lines) != st.Packets {
		t.Fatalf("output has %d lines for %d packets", lines, st.Packets)
	}
}

// writePcapRecordsOnly emits pcap records without a global header, for
// appending to an existing capture.
func writePcapRecordsOnly(w *bytes.Buffer, trace []rule.Packet) error {
	var full bytes.Buffer
	if err := wire.WritePcap(&full, trace); err != nil {
		return err
	}
	_, err := w.Write(full.Bytes()[24:])
	return err
}
