// Command pcsim builds the modified search structure for a ruleset and
// runs a packet trace through the cycle-accurate accelerator simulator,
// reporting memory, worst-case cycles, throughput and energy.
//
// Usage:
//
//	pcsim -rules rules.txt -tracefile trace.txt -algo hypercuts -device asic
//	pcsim -profile acl1 -n 2191 -trace 20000        # synthetic inputs
//
// Ruleset files are in ClassBench format (see cmd/pcgen); trace files hold
// either one "srcIP dstIP srcPort dstPort proto" decimal tuple per line,
// the framed binary wire format, or a pcap capture — the format is
// auto-detected from the first bytes.
//
// With -telemetry the host-engine measurement runs instrumented and the
// telemetry plane is exposed over HTTP — Prometheus text metrics on
// /metrics, the flight-recorder event ring on /debug/events, and pprof
// on /debug/pprof/ — for as long as -hold keeps the process alive:
//
//	pcsim -profile acl1 -n 2191 -telemetry 127.0.0.1:9090 -hold 60s &
//	curl -s http://127.0.0.1:9090/metrics | grep repro_packets_total
//	go tool pprof http://127.0.0.1:9090/debug/pprof/profile?seconds=5
//
// -save writes the compiled engine's versioned image (internal/image)
// after the run; -restore boots the host engine from such an image
// instead of building the search structure — the cold-start path a
// restarting replica takes. The device simulation needs the
// control-plane tree and is skipped under -restore:
//
//	pcsim -profile acl1 -n 10000 -save acl1.pcei
//	pcsim -restore acl1.pcei -trace 20000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/hwsim"
	"repro/internal/rule"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var (
		rulesFile = flag.String("rules", "", "ClassBench ruleset file (overrides -profile)")
		traceFile = flag.String("tracefile", "", "packet trace file (overrides -trace)")
		profile   = flag.String("profile", "acl1", "synthetic profile when no -rules given")
		n         = flag.Int("n", 1000, "synthetic ruleset size")
		traceN    = flag.Int("trace", 20000, "synthetic trace length")
		seed      = flag.Int64("seed", 2008, "generation seed")
		algo      = flag.String("algo", "hypercuts", "hicuts or hypercuts")
		device    = flag.String("device", "asic", "asic or fpga")
		speed     = flag.Int("speed", 1, "speed parameter (0 or 1)")
		spfac     = flag.Int("spfac", 4, "space factor")
		binth     = flag.Int("binth", 120, "leaf threshold")
		telemAddr = flag.String("telemetry", "", "serve /metrics, /debug/events and /debug/pprof on this host:port (\":0\" picks a port)")
		hold      = flag.Duration("hold", 0, "keep serving telemetry this long after the run (requires -telemetry)")
		savePath  = flag.String("save", "", "write the compiled engine image to this file after the run")
		restore   = flag.String("restore", "", "boot the host engine from an engine image instead of building (skips the device simulation)")
	)
	flag.Parse()

	if err := run(*rulesFile, *traceFile, *profile, *n, *traceN, *seed, *algo, *device, *speed, *spfac, *binth, *telemAddr, *hold, *savePath, *restore); err != nil {
		fmt.Fprintln(os.Stderr, "pcsim:", err)
		os.Exit(1)
	}
}

func run(rulesFile, traceFile, profile string, n, traceN int, seed int64, algo, device string, speed, spfac, binth int, telemAddr string, hold time.Duration, savePath, restorePath string) error {
	// Restore boots straight from a serialized engine image: no ruleset,
	// no tree build — the replica cold-start path. The trace still comes
	// from -tracefile, or is synthesized from -profile/-n when absent.
	if restorePath != "" {
		return runRestore(restorePath, traceFile, profile, n, traceN, seed, telemAddr, hold)
	}

	// Inputs.
	var rs rule.RuleSet
	if rulesFile != "" {
		f, err := os.Open(rulesFile)
		if err != nil {
			return err
		}
		rs, err = rule.ReadSet(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		p, err := classbench.ProfileByName(profile)
		if err != nil {
			return err
		}
		rs = classbench.Generate(p, n, seed)
	}

	var trace []rule.Packet
	if traceFile != "" {
		var err error
		if trace, err = readTraceFile(traceFile); err != nil {
			return err
		}
	} else {
		trace = classbench.GenerateTrace(rs, traceN, seed+1)
	}

	// Build.
	var a core.Algorithm
	switch algo {
	case "hicuts":
		a = core.HiCuts
	case "hypercuts":
		a = core.HyperCuts
	default:
		return fmt.Errorf("unknown -algo %q", algo)
	}
	cfg := core.DefaultConfig(a)
	cfg.Speed = speed
	cfg.Spfac = spfac
	cfg.Binth = binth
	tree, err := core.Build(rs, cfg)
	if err != nil {
		return err
	}

	var dev hwsim.Device
	switch device {
	case "asic":
		dev = hwsim.ASIC
	case "fpga":
		dev = hwsim.FPGA
	default:
		return fmt.Errorf("unknown -device %q", device)
	}

	fmt.Printf("ruleset: %d rules; algorithm: %v; binth=%d spfac=%d speed=%d\n",
		len(rs), a, cfg.Binth, cfg.Spfac, cfg.Speed)
	fmt.Printf("search structure: %d words = %d bytes (device capacity %d bytes), depth %d\n",
		tree.Words(), tree.MemoryBytes(), core.DeviceBytes, tree.Depth())
	fmt.Printf("worst-case cycles/memory accesses per packet: %d\n", tree.WorstCaseCycles())
	fmt.Printf("guaranteed throughput on %s: %.0f pps (line rate: %s)\n",
		dev.Name, hwsim.WorstCaseThroughputPPS(dev, tree.WorstCaseCycles()),
		energy.HighestLine(hwsim.WorstCaseThroughputPPS(dev, tree.WorstCaseCycles())))

	// Software fast path: the same tree flattened into the host engine,
	// behind an epoch handle so the telemetry plane (when enabled) sees
	// the same instrumented path production serving uses.
	eng := engine.Compile(tree)
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		written, err := eng.Snapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("saving engine image: %w", err)
		}
		fmt.Printf("engine image: %d bytes -> %s\n", written, savePath)
	}
	h := engine.NewHandle(eng)
	var srv *telemetry.Server
	if telemAddr != "" {
		rec := telemetry.New()
		h.SetTelemetry(rec)
		rec.BuildNs.Observe(tree.BuildNanos())
		rec.Events.Record(telemetry.EvBuild, 0,
			tree.BuildNanos(), int64(len(rs)), int64(tree.Words()))
		var err error
		if srv, err = telemetry.Serve(telemAddr, rec); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics /debug/events /debug/pprof/\n", srv.Addr())
	}
	holdOpen := func() {
		if srv != nil && hold > 0 {
			fmt.Printf("telemetry: holding for %s\n", hold)
			time.Sleep(hold)
		}
	}

	if !tree.FitsDevice() {
		fmt.Printf("NOTE: structure exceeds the 1024-word device; simulation skipped.\n")
		fmt.Printf("      (the paper suggests doubling memory words or reducing spfac)\n")
		reportEngine(h, eng, trace)
		holdOpen()
		return nil
	}
	img, err := tree.Encode()
	if err != nil {
		return err
	}
	sim, err := hwsim.New(img, dev)
	if err != nil {
		return err
	}
	_, st, err := sim.RunVerified(trace, eng)
	if err != nil {
		return fmt.Errorf("simulator/engine divergence: %w", err)
	}
	fmt.Printf("trace: %d packets, %d matched (%.1f%%); software engine agrees on every packet\n",
		st.Packets, st.Matched, 100*float64(st.Matched)/float64(st.Packets))
	fmt.Printf("cycles: %d total, %.3f per packet sustained, worst observed latency %d\n",
		st.Cycles, st.AvgCyclesPerPacket, st.WorstLatency)
	fmt.Printf("throughput: %.0f pps at %.0f MHz (%s)\n",
		st.PacketsPerSecond, dev.FreqHz/1e6, energy.HighestLine(st.PacketsPerSecond))
	fmt.Printf("energy: %.3e J/packet (normalized %.2f mW average power)\n",
		st.EnergyPerPacketJ, dev.PowerW*1000)
	reportEngine(h, eng, trace)
	holdOpen()
	return nil
}

// readTraceFile loads a packet trace, auto-detecting binary wire
// frames, a pcap capture, or text lines (see internal/stream.Detect).
func readTraceFile(path string) ([]rule.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src, _ := stream.Detect(bufio.NewReader(f))
	return wire.ReadAll(src)
}

// runRestore is the -restore path: deserialize a saved engine image and
// serve from it immediately, measuring how long the cold start took.
// The control-plane tree is not rebuilt, so the cycle-accurate device
// simulation (which walks the tree encoding) is skipped; the host
// engine throughput report runs as usual.
func runRestore(restorePath, traceFile, profile string, n, traceN int, seed int64, telemAddr string, hold time.Duration) error {
	data, err := os.ReadFile(restorePath)
	if err != nil {
		return err
	}
	start := time.Now()
	h, err := engine.RestoreBytes(data)
	if err != nil {
		return fmt.Errorf("restoring %s: %w", restorePath, err)
	}
	elapsed := time.Since(start)
	eng := h.Current().Engine()
	fmt.Printf("engine image: %d bytes from %s -> serving in %s (no control-plane build)\n",
		len(data), restorePath, elapsed)
	fmt.Printf("restored engine: %d nodes, %d bytes flat, scan kernel %q\n",
		eng.NumNodes(), eng.MemoryBytes(), eng.Kernel())
	fmt.Printf("NOTE: device simulation needs the control-plane tree; skipped under -restore.\n")

	var trace []rule.Packet
	if traceFile != "" {
		if trace, err = readTraceFile(traceFile); err != nil {
			return err
		}
	} else {
		p, err := classbench.ProfileByName(profile)
		if err != nil {
			return err
		}
		rs := classbench.Generate(p, n, seed)
		trace = classbench.GenerateTrace(rs, traceN, seed+1)
	}

	var srv *telemetry.Server
	if telemAddr != "" {
		rec := telemetry.New()
		h.SetTelemetry(rec)
		if srv, err = telemetry.Serve(telemAddr, rec); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics /debug/events /debug/pprof/\n", srv.Addr())
	}
	reportEngine(h, eng, trace)
	if srv != nil && hold > 0 {
		fmt.Printf("telemetry: holding for %s\n", hold)
		time.Sleep(hold)
	}
	return nil
}

// reportEngine measures the flat engine's wall-clock throughput on the
// host: single-core batched and sharded across all cores. Classification
// goes through the handle so an attached telemetry recorder observes it.
func reportEngine(h *engine.Handle, eng *engine.Engine, trace []rule.Packet) {
	if len(trace) == 0 {
		return
	}
	out := make([]int32, len(trace))
	single := bench.MeasurePPS(trace, func(t []rule.Packet) { h.ClassifyBatchCached(t, out) })
	workers := runtime.GOMAXPROCS(0)
	parallel := bench.MeasurePPS(trace, func(t []rule.Packet) { h.ParallelClassifyCached(t, out, workers) })
	fmt.Printf("host engine (%d nodes, %d bytes flat): %.0f pps single-core (%s), %.0f pps on %d cores (%s)\n",
		eng.NumNodes(), eng.MemoryBytes(),
		single, energy.HighestLine(single), parallel, workers, energy.HighestLine(parallel))
}
