package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
	"repro/internal/wire"
)

func TestRunSyntheticEndToEnd(t *testing.T) {
	// Synthetic inputs through the whole pipeline on both devices; the
	// asic run also exercises the -telemetry serving path end to end.
	for i, device := range []string{"asic", "fpga"} {
		telem := ""
		if i == 0 {
			telem = "127.0.0.1:0"
		}
		if err := run("", "", "acl1", 300, 2000, 7, "hypercuts", device, 1, 4, 120, telem, 0, "", ""); err != nil {
			t.Fatalf("%s: %v", device, err)
		}
	}
}

func TestRunFromFiles(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.txt")
	tracePath := filepath.Join(dir, "trace.txt")

	rs := classbench.Generate(classbench.IPC1(), 150, 9)
	rf, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rule.WriteSet(rf, rs); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	trace := classbench.GenerateTrace(rs, 500, 10)
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rule.WriteTrace(tf, trace); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	if err := run(rulesPath, tracePath, "", 0, 0, 0, "hicuts", "asic", 0, 4, 120, "", 0, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "acl1", 50, 100, 1, "bogus", "asic", 1, 4, 120, "", 0, "", ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("", "", "acl1", 50, 100, 1, "hicuts", "bogus", 1, 4, 120, "", 0, "", ""); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("/does/not/exist", "", "", 0, 0, 0, "hicuts", "asic", 1, 4, 120, "", 0, "", ""); err == nil {
		t.Error("missing rules file accepted")
	}
}

func TestRunSaveRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "acl1.pcei")

	// -save writes the compiled engine image alongside a normal run.
	if err := run("", "", "acl1", 300, 1000, 7, "hypercuts", "asic", 1, 4, 120, "", 0, imgPath, ""); err != nil {
		t.Fatalf("save run: %v", err)
	}
	if fi, err := os.Stat(imgPath); err != nil || fi.Size() == 0 {
		t.Fatalf("image not written: %v (size %v)", err, fi)
	}

	// -restore boots from the image (no build) and reports throughput.
	if err := run("", "", "acl1", 300, 1000, 7, "hypercuts", "asic", 1, 4, 120, "", 0, "", imgPath); err != nil {
		t.Fatalf("restore run: %v", err)
	}

	// A corrupt image must fail closed, not serve garbage.
	data, err := os.ReadFile(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	badPath := filepath.Join(dir, "bad.pcei")
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", "acl1", 300, 1000, 7, "hypercuts", "asic", 1, 4, 120, "", 0, "", badPath); err == nil {
		t.Error("corrupt image accepted")
	}
	if err := run("", "", "acl1", 300, 1000, 7, "hypercuts", "asic", 1, 4, 120, "", 0, "", filepath.Join(dir, "missing.pcei")); err == nil {
		t.Error("missing image accepted")
	}
}

func TestRunAutoDetectsBinaryAndPcapTraces(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.txt")
	rs := classbench.Generate(classbench.ACL1(), 100, 9)
	rf, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rule.WriteSet(rf, rs); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	trace := classbench.GenerateTrace(rs, 400, 10)

	write := func(name string, enc func(io.Writer, []rule.Packet) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f, trace); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	for name, path := range map[string]string{
		"binary": write("trace.bin", wire.WriteTrace),
		"pcap":   write("trace.pcap", wire.WritePcap),
	} {
		if err := run(rulesPath, path, "", 0, 0, 0, "hypercuts", "asic", 1, 4, 120, "", 0, "", ""); err != nil {
			t.Fatalf("%s trace: %v", name, err)
		}
	}
}
