// pclint is the repo's invariant checker: the internal/lint analyzer
// suite (hotpath, atomicmix, arenaappend, unsafealias, metricdefs,
// reproallow) plus the stock asmdecl pass for the SIMD shims, packaged
// as a vet tool.
//
// Two ways to run it:
//
//	go vet -vettool=$(which pclint) ./...
//	pclint ./...
//
// The second form simply re-execs `go vet -vettool=<self>` with the
// given package patterns, so facts flow across packages through the
// go command's unit-checking protocol exactly as they would under vet.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/asmdecl"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	if isVetProtocol(os.Args[1:]) {
		suite := append([]*analysis.Analyzer{}, lint.Analyzers()...)
		suite = append(suite, asmdecl.Analyzer)
		unitchecker.Main(suite...) // never returns
	}

	// Human-invoked form: delegate to `go vet` with ourselves as the
	// vettool so the driver handles package loading, dependency facts
	// and caching.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		os.Exit(2)
	}
}

// isVetProtocol reports whether the go command is driving us through
// the unitchecker protocol: `pclint -V=full`, `pclint -flags`, or
// `pclint path/to/unit.cfg`.
func isVetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-flags" || strings.HasPrefix(a, "-V") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
