// Command pctables regenerates the paper's evaluation tables (Tables 2-8)
// and the §5.2/§5.3 headline claims.
//
// Usage:
//
//	pctables                  # all tables at the paper's sizes
//	pctables -table 4         # one table
//	pctables -quick           # reduced sizes/trace for a fast smoke run
//	pctables -seed 1 -trace 50000
//
// Table 4 at the full paper sizes builds trees for up to ~25,000 rules
// and takes minutes on one core; -quick caps sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/classbench"
	"repro/internal/telemetry"
)

func main() {
	var (
		table       = flag.Int("table", 0, "table to print (2-8; 0 = all plus claims)")
		seed        = flag.Int64("seed", 2008, "ruleset/trace generation seed")
		trace       = flag.Int("trace", 20000, "trace length per measurement")
		quick       = flag.Bool("quick", false, "reduced sizes for a fast run")
		ablation    = flag.Bool("ablation", false, "also print the design-decision ablations")
		sensitivity = flag.Bool("sensitivity", false, "also print the seed-sensitivity study")
		engineTbl   = flag.Bool("engine", false, "also print host flat-engine throughput (not a paper table)")
		churn       = flag.Bool("churn", false, "also print classification throughput under sustained rule updates (not a paper table)")
		cacheTbl    = flag.Bool("cache", false, "also print flow-cache hit-rate/throughput on locality-skewed traces (not a paper table)")
		ingestTbl   = flag.Bool("ingest", false, "also print end-to-end ingest throughput, text vs binary framing (not a paper table)")
		coldTbl     = flag.Bool("coldstart", false, "also print build-vs-image-restore cold-start latency (not a paper table)")
		telemAddr   = flag.String("telemetry", "", "serve live /metrics, /debug/events and /debug/pprof on this host:port while tables run")
	)
	flag.Parse()

	opts := bench.Options{Seed: *seed, TracePackets: *trace}
	if *telemAddr != "" {
		opts.Telemetry = telemetry.New()
		srv, err := telemetry.Serve(*telemAddr, opts.Telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pctables:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", srv.Addr())
	}
	ablN := 1500
	if *quick {
		opts.Sizes = []int{60, 150, 500, 1000}
		opts.Table4Sizes = []int{300, 1200, 2500}
		ablN = 600
		if *trace == 20000 {
			opts.TracePackets = 5000
		}
	}

	ingestSizes := []int(nil) // RunIngest default: 1k and 10k rules
	coldSizes := []int(nil)   // RunColdStart default: 1k, 10k and 50k rules
	if *quick {
		ingestSizes = []int{500}
		coldSizes = []int{500, 2000}
	}
	if err := run(*table, *ablation, *sensitivity, *engineTbl, *churn, *cacheTbl, *ingestTbl, *coldTbl, ablN, ingestSizes, coldSizes, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pctables:", err)
		os.Exit(1)
	}
}

func run(table int, ablation, sensitivity, engineTbl, churn, cacheTbl, ingestTbl, coldTbl bool, ablN int, ingestSizes, coldSizes []int, opts bench.Options) error {
	needACL := table == 0 || table == 2 || table == 3 || table == 6 || table == 7 || table == 8
	var rows []bench.ACL1Row
	var err error
	if needACL {
		fmt.Fprintf(os.Stderr, "building acl1 classifiers for sizes %v...\n", sizesOf(opts))
		rows, err = bench.RunACL1(opts)
		if err != nil {
			return err
		}
	}
	show := func(n int, t *bench.Table) {
		if table == 0 || table == n {
			fmt.Println(t.Format())
		}
	}
	if rows != nil {
		show(2, bench.Table2(rows))
		show(3, bench.Table3(rows))
	}
	show(5, bench.Table5())
	if rows != nil {
		show(6, bench.Table6(rows))
		show(7, bench.Table7(rows))
		show(8, bench.Table8(rows))
	}
	if table == 0 || table == 4 {
		fmt.Fprintln(os.Stderr, "building table 4 profiles (this is the slow one)...")
		t4, err := bench.RunTable4(opts)
		if err != nil {
			return err
		}
		fmt.Println(bench.Table4(t4).Format())
	}
	if ablation {
		fmt.Fprintln(os.Stderr, "measuring ablations...")
		ab, err := bench.RunAblations(opts, ablN)
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationTable(ab).Format())
	}
	if engineTbl {
		fmt.Fprintln(os.Stderr, "measuring host flat-engine throughput...")
		rows, err := bench.RunEngine(opts)
		if err != nil {
			return err
		}
		fmt.Println(bench.EngineTable(rows).Format())
	}
	if churn {
		fmt.Fprintln(os.Stderr, "measuring classification under update churn...")
		rows, err := bench.RunUpdateChurn(opts)
		if err != nil {
			return err
		}
		fmt.Println(bench.ChurnTable(rows).Format())
	}
	if cacheTbl {
		fmt.Fprintln(os.Stderr, "measuring flow-cache throughput on locality-skewed traces...")
		rows, err := bench.RunFlowCache(opts)
		if err != nil {
			return err
		}
		fmt.Println(bench.CacheTable(rows).Format())
	}
	if ingestTbl {
		fmt.Fprintln(os.Stderr, "measuring end-to-end ingest throughput (text vs binary framing)...")
		io := opts
		io.Sizes = ingestSizes
		rows, err := bench.RunIngest(io)
		if err != nil {
			return err
		}
		fmt.Println(bench.IngestTable(rows).Format())
	}
	if coldTbl {
		fmt.Fprintln(os.Stderr, "measuring cold start (build vs image restore)...")
		co := opts
		co.Sizes = coldSizes
		rows, err := bench.RunColdStart(co)
		if err != nil {
			return err
		}
		fmt.Println(bench.ColdStartTable(rows).Format())
	}
	if sensitivity {
		fmt.Fprintln(os.Stderr, "running seed-sensitivity study...")
		rows, err := bench.RunSeedSensitivity(2191, nil, opts.TracePackets)
		if err != nil {
			return err
		}
		fmt.Println(bench.SensitivityTable(2191, rows).Format())
	}
	if table == 0 {
		fmt.Fprintln(os.Stderr, "measuring headline claims (RFC build is slow at 2191 rules)...")
		cl, err := bench.RunClaims(opts)
		if err != nil {
			return err
		}
		fmt.Println(bench.ClaimsTable(cl).Format())
		exp, err := bench.TCAMExpansion(opts, 1000)
		if err != nil {
			return err
		}
		fmt.Println(exp.Format())
	}
	return nil
}

func sizesOf(opts bench.Options) []int {
	if len(opts.Sizes) > 0 {
		return opts.Sizes
	}
	return classbench.PaperSizes(2, "acl1")
}
