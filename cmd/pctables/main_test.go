package main

import (
	"testing"

	"repro/internal/bench"
)

func TestRunSingleTables(t *testing.T) {
	opts := bench.Options{
		Seed:         7,
		Sizes:        []int{60, 150},
		Table4Sizes:  []int{300},
		TracePackets: 1000,
	}
	// Table 5 is constants-only; tables 2 and 4 exercise the builders.
	for _, table := range []int{5, 2, 4} {
		if err := run(table, false, false, false, false, false, false, false, 600, nil, nil, opts); err != nil {
			t.Fatalf("table %d: %v", table, err)
		}
	}
}

func TestRunAblationFlag(t *testing.T) {
	opts := bench.Options{Seed: 7, Sizes: []int{60}, TracePackets: 800}
	if err := run(5, true, false, false, false, false, false, false, 400, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunEngineFlag(t *testing.T) {
	opts := bench.Options{Seed: 7, Sizes: []int{60}, TracePackets: 800}
	if err := run(5, false, false, true, false, false, false, false, 600, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnFlag(t *testing.T) {
	opts := bench.Options{Seed: 7, Sizes: []int{60}, TracePackets: 800}
	if err := run(5, false, false, false, true, false, false, false, 600, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunCacheFlag(t *testing.T) {
	opts := bench.Options{Seed: 7, Sizes: []int{60}, TracePackets: 800}
	if err := run(5, false, false, false, false, true, false, false, 600, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunIngestFlag(t *testing.T) {
	opts := bench.Options{Seed: 7, TracePackets: 800}
	if err := run(5, false, false, false, false, false, true, false, 600, []int{200}, nil, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunColdStartFlag(t *testing.T) {
	opts := bench.Options{Seed: 7, TracePackets: 800}
	if err := run(5, false, false, false, false, false, false, true, 600, nil, []int{200}, opts); err != nil {
		t.Fatal(err)
	}
}

func TestSizesOfDefaults(t *testing.T) {
	if got := sizesOf(bench.Options{}); len(got) != 6 || got[5] != 2191 {
		t.Errorf("default sizes = %v", got)
	}
	if got := sizesOf(bench.Options{Sizes: []int{5}}); len(got) != 1 {
		t.Errorf("override sizes = %v", got)
	}
}
