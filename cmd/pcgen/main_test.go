package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rule"
	"repro/internal/wire"
)

func TestRunWritesRulesetAndTrace(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.txt")
	tracePath := filepath.Join(dir, "trace.txt")

	if err := run("acl1", 120, 7, rulesPath, 300, tracePath, 0, 8, "text"); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rs, err := rule.ReadSet(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 120 {
		t.Fatalf("wrote %d rules, want 120", len(rs))
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trace, err := rule.ReadTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 300 {
		t.Fatalf("wrote %d packets, want 300", len(trace))
	}
	// The regenerated artifacts must be usable: most packets match.
	hits := 0
	for _, p := range trace {
		if rs.Match(p) >= 0 {
			hits++
		}
	}
	if hits < len(trace)/2 {
		t.Errorf("only %d/%d trace packets match the ruleset", hits, len(trace))
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	if err := run("bogus", 10, 1, "-", 0, "-", 0, 8, "text"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRunWritesFlowTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "flowtrace.txt")
	if err := run("acl1", 80, 7, filepath.Join(dir, "r.txt"), 2000, tracePath, 64, 8, "text"); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trace, err := rule.ReadTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2000 {
		t.Fatalf("wrote %d packets, want 2000", len(trace))
	}
	// Flow locality survives the round trip: bounded distinct headers.
	distinct := map[rule.Packet]bool{}
	for _, p := range trace {
		distinct[p] = true
	}
	if len(distinct) > 64 {
		t.Errorf("%d distinct headers for a 64-flow trace", len(distinct))
	}
}

func TestRunWritesBinaryAndPcapTraces(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"binary", "pcap"} {
		tracePath := filepath.Join(dir, "trace."+format)
		if err := run("acl1", 60, 7, filepath.Join(dir, "r-"+format+".txt"), 400, tracePath, 0, 8, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		switch format {
		case "binary":
			if !wire.IsMagic(data) {
				t.Fatalf("binary trace does not start with the wire magic")
			}
			trace, err := wire.ReadAll(wire.NewReader(bytes.NewReader(data)))
			if err != nil {
				t.Fatal(err)
			}
			if len(trace) != 400 {
				t.Fatalf("decoded %d packets, want 400", len(trace))
			}
		case "pcap":
			if !wire.IsPcapMagic(data) {
				t.Fatalf("pcap trace does not start with a pcap magic")
			}
			trace, err := wire.ReadAll(wire.NewPcapReader(bytes.NewReader(data)))
			if err != nil {
				t.Fatal(err)
			}
			if len(trace) != 400 {
				t.Fatalf("decoded %d packets, want 400", len(trace))
			}
		}
	}
}
