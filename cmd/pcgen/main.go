// Command pcgen generates ClassBench-style synthetic rulesets and packet
// traces in the standard filter-set format.
//
// Usage:
//
//	pcgen -profile acl1 -n 2191 -seed 2008 -o rules.txt
//	pcgen -profile fw1 -n 1000 -trace 50000 -traceout trace.txt
//	pcgen -profile acl1 -n 2191 -trace 50000 -flows 4096 -burst 16 -traceout trace.txt
//
// The ruleset is written in ClassBench format (one '@'-prefixed filter
// per line); the trace as one "srcIP dstIP srcPort dstPort proto" tuple
// of decimal values per line. With -binary the trace is written in the
// framed binary wire format instead (internal/wire) — the line-rate
// ingest format every trace consumer auto-detects; with -pcap it is
// written as a minimal synthetic pcap capture (Ethernet+IPv4 stub
// frames), the fixture format for the pcap ingest adapter.
//
// With -flows the trace has flow-level temporal locality: traffic is
// carried by that many distinct 5-tuples, arriving as packet trains
// (mean length -burst) with Zipf-skewed flow popularity — the locality
// the flow cache exploits. Without -flows every packet is sampled
// independently, as before.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/classbench"
	"repro/internal/rule"
	"repro/internal/wire"
)

func main() {
	var (
		profile  = flag.String("profile", "acl1", "ruleset profile: acl1, fw1 or ipc1")
		n        = flag.Int("n", 1000, "number of rules")
		seed     = flag.Int64("seed", 2008, "generation seed")
		out      = flag.String("o", "-", "ruleset output file (- = stdout)")
		traceN   = flag.Int("trace", 0, "also generate a packet trace of this length")
		traceOut = flag.String("traceout", "-", "trace output file (- = stdout)")
		flows    = flag.Int("flows", 0, "flow-locality trace: number of distinct flows (0 = per-packet sampling)")
		burst    = flag.Int("burst", 8, "mean packet-train length for -flows traces")
		binary   = flag.Bool("binary", false, "write the trace in the binary wire format instead of text")
		pcap     = flag.Bool("pcap", false, "write the trace as a synthetic pcap capture instead of text")
	)
	flag.Parse()

	if *binary && *pcap {
		fmt.Fprintln(os.Stderr, "pcgen: -binary and -pcap are mutually exclusive")
		os.Exit(2)
	}
	format := "text"
	if *binary {
		format = "binary"
	} else if *pcap {
		format = "pcap"
	}
	if err := run(*profile, *n, *seed, *out, *traceN, *traceOut, *flows, *burst, format); err != nil {
		fmt.Fprintln(os.Stderr, "pcgen:", err)
		os.Exit(1)
	}
}

func run(profile string, n int, seed int64, out string, traceN int, traceOut string, flows, burst int, format string) error {
	p, err := classbench.ProfileByName(profile)
	if err != nil {
		return err
	}
	rs := classbench.Generate(p, n, seed)

	w, closeW, err := openOut(out)
	if err != nil {
		return err
	}
	if err := rule.WriteSet(w, rs); err != nil {
		closeW()
		return err
	}
	if err := closeW(); err != nil {
		return err
	}

	if traceN > 0 {
		var trace []rule.Packet
		if flows > 0 {
			trace = classbench.GenerateFlowTrace(rs, traceN, flows, burst, seed+1)
		} else {
			trace = classbench.GenerateTrace(rs, traceN, seed+1)
		}
		tw, closeT, err := openOut(traceOut)
		if err != nil {
			return err
		}
		var werr error
		switch format {
		case "binary":
			werr = wire.WriteTrace(tw, trace)
		case "pcap":
			werr = wire.WritePcap(tw, trace)
		default:
			werr = rule.WriteTrace(tw, trace)
		}
		if werr != nil {
			closeT()
			return werr
		}
		return closeT()
	}
	return nil
}

func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
