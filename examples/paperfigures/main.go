// Paper figures example: rebuild the decision trees of the paper's
// Figures 1 and 3 — the HiCuts and HyperCuts trees over the 10-rule
// Table 1 ruleset with binth 3 — and print them, along with the cut
// geometry of Figure 2 and a verification that every possible packet in
// the didactic 8-bit field space classifies identically to a linear scan.
//
// Run with:
//
//	go run ./examples/paperfigures
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/classbench"
	"repro/internal/hicuts"
	"repro/internal/hypercuts"
	"repro/internal/rule"
)

func main() {
	rs := classbench.Table1()
	fmt.Println("Table 1 ruleset (five 8-bit fields, widened to 5-tuple widths):")
	for i := range rs {
		lo := [rule.NumDims]uint8{}
		hi := [rule.NumDims]uint8{}
		for d := 0; d < rule.NumDims; d++ {
			lo[d] = rule.Top8OfValue(rs[i].F[d].Lo, d)
			hi[d] = rule.Top8OfValue(rs[i].F[d].Hi, d)
		}
		fmt.Printf("  R%d: %3d-%3d  %3d-%3d  %3d-%3d  %3d-%3d  %3d-%3d\n",
			i, lo[0], hi[0], lo[1], hi[1], lo[2], hi[2], lo[3], hi[3], lo[4], hi[4])
	}

	// Figure 1: HiCuts tree, binth 3, spfac 4 (cuts one dimension at a
	// time, doubling from 2 under Eq. 1).
	hc, err := hicuts.Build(rs, hicuts.Config{Binth: 3, Spfac: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 1 — HiCuts decision tree (binth 3):")
	printHiCuts(hc.Root, 1)

	// Figure 3: HyperCuts tree, binth 3 (cuts multiple dimensions at
	// once under Eq. 2).
	hy, err := hypercuts.Build(rs, hypercuts.Config{Binth: 3, Spfac: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 3 — HyperCuts decision tree (binth 3):")
	printHyperCuts(hy.Root, 1)

	// Figure 2 is the geometric view of the root cuts.
	fmt.Println("\nFigure 2 — root-node cut geometry:")
	fmt.Printf("  HiCuts root: dimension %d (%s) cut into %d equal pieces\n",
		hc.Root.Dim, rule.DimNames[hc.Root.Dim], hc.Root.NumCuts)
	var dims []string
	for _, c := range hy.Root.Cuts {
		dims = append(dims, fmt.Sprintf("%s x%d", rule.DimNames[c.Dim], c.NumCuts))
	}
	fmt.Printf("  HyperCuts root: %s (%d children)\n", strings.Join(dims, ", "), len(hy.Root.Children))

	// Both trees must agree with the linear scan over the whole 8-bit
	// didactic space (sampled densely).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		p := rule.PacketFromBytes([rule.NumDims]uint8{
			uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)),
			uint8(rng.Intn(256)), uint8(rng.Intn(256))})
		want := rs.Match(p)
		if got := hc.Classify(p); got != want {
			log.Fatalf("HiCuts mismatch: %d vs %d", got, want)
		}
		if got := hy.Classify(p); got != want {
			log.Fatalf("HyperCuts mismatch: %d vs %d", got, want)
		}
	}
	fmt.Println("\nboth trees agree with linear search on 200,000 sampled packets")
}

func printHiCuts(n *hicuts.Node, depth int) {
	ind := strings.Repeat("  ", depth)
	if n == nil {
		return
	}
	if n.Leaf {
		fmt.Printf("%sleaf %s\n", ind, ruleList(n.Rules))
		return
	}
	fmt.Printf("%scut %s into %d:\n", ind, rule.DimNames[n.Dim], n.NumCuts)
	printed := map[*hicuts.Node]bool{}
	for i, c := range n.Children {
		if c == nil || printed[c] {
			continue
		}
		printed[c] = true
		fmt.Printf("%s[child %d]\n", ind, i)
		printHiCuts(c, depth+1)
	}
}

func printHyperCuts(n *hypercuts.Node, depth int) {
	ind := strings.Repeat("  ", depth)
	if n == nil {
		return
	}
	if n.Leaf {
		fmt.Printf("%sleaf %s\n", ind, ruleList(n.Rules))
		return
	}
	var dims []string
	for _, c := range n.Cuts {
		dims = append(dims, fmt.Sprintf("%s x%d", rule.DimNames[c.Dim], c.NumCuts))
	}
	fmt.Printf("%scut %s:\n", ind, strings.Join(dims, ", "))
	if len(n.Pushed) > 0 {
		fmt.Printf("%s(pushed common rules: %s)\n", ind, ruleList(n.Pushed))
	}
	printed := map[*hypercuts.Node]bool{}
	for i, c := range n.Children {
		if c == nil || printed[c] {
			continue
		}
		printed[c] = true
		fmt.Printf("%s[child %d]\n", ind, i)
		printHyperCuts(c, depth+1)
	}
}

func ruleList(ids []int32) string {
	var parts []string
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("R%d", id))
	}
	if parts == nil {
		return "(empty)"
	}
	return strings.Join(parts, ",")
}
