// Firewall example: the fw1 profile's wildcard-heavy rules blow up
// decision-tree memory (paper Table 4), and the spfac parameter trades
// that memory against lookup cycles. This example reproduces the paper's
// §5.1 observation that over-budget fw1 sets "can still be stored in the
// FPGA's block RAM by reducing spfac, trading off memory against
// throughput".
//
// Run with:
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/hwsim"
)

func main() {
	fmt.Println("fw1 firewall rulesets: memory vs spfac (modified HiCuts, speed 1)")
	fmt.Println()

	for _, n := range []int{300, 1200, 2500} {
		rules := classbench.Generate(classbench.FW1(), n, 2008)
		fmt.Printf("%d rules:\n", n)
		for _, spfac := range []int{1, 2, 4} {
			cfg := core.DefaultConfig(core.HiCuts)
			cfg.Spfac = spfac
			tree, err := core.Build(rules, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fits := "fits the 1024-word device"
			if !tree.FitsDevice() {
				fits = "EXCEEDS the 1024-word device"
			}
			fmt.Printf("  spfac=%d: %7d bytes (%4d words, %s), worst case %d cycles, guaranteed %5.1f Mpps (ASIC)\n",
				spfac, tree.MemoryBytes(), tree.Words(), fits,
				tree.WorstCaseCycles(),
				hwsim.WorstCaseThroughputPPS(hwsim.ASIC, tree.WorstCaseCycles())/1e6)
		}
		fmt.Println()
	}

	// Contrast with an acl1 set of the same size: wildcards are what
	// make firewall sets expensive.
	rulesACL := classbench.Generate(classbench.ACL1(), 2500, 2008)
	treeACL, err := core.Build(rulesACL, core.DefaultConfig(core.HiCuts))
	if err != nil {
		log.Fatal(err)
	}
	rulesFW := classbench.Generate(classbench.FW1(), 2500, 2008)
	treeFW, err := core.Build(rulesFW, core.DefaultConfig(core.HiCuts))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 2500 rules and spfac=4: acl1 needs %d bytes, fw1 needs %d bytes (%.1fx)\n",
		treeACL.MemoryBytes(), treeFW.MemoryBytes(),
		float64(treeFW.MemoryBytes())/float64(treeACL.MemoryBytes()))
	fmt.Println("(wildcard source/destination rules replicate into every cut child;")
	fmt.Println(" the paper's Table 4 shows the same acl1-vs-fw1 asymmetry)")
}
