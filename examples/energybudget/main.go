// Energy budget example: reproduce the paper's §5.3 power story. A
// line-card has a tight power budget; this example compares, for the same
// ruleset and traffic, the per-packet energy and average power of
//
//   - the software algorithms on a StrongARM SA-1100,
//   - the accelerator as 65 nm ASIC and as Virtex-5 FPGA,
//   - a Cypress Ayama TCAM search engine (datasheet model).
//
// Run with:
//
//	go run ./examples/energybudget
package main

import (
	"fmt"
	"log"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/hypercuts"
	"repro/internal/sa1100"
	"repro/internal/tcam"
)

func main() {
	rules := classbench.Generate(classbench.ACL1(), 2191, 2008)
	trace := classbench.GenerateTrace(rules, 20000, 2009)
	fmt.Printf("workload: acl1, %d rules, %d-packet trace\n\n", len(rules), len(trace))
	fmt.Printf("%-42s %14s %14s\n", "implementation", "J/packet", "avg power")
	fmt.Printf("%-42s %14s %14s\n", "--------------", "--------", "---------")

	// Software baselines (normalized energy, paper Table 6 convention).
	costs := sa1100.DefaultCosts()
	swHi, err := hicuts.Build(rules, hicuts.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stHi := sa1100.MeasureClassification(swHi, trace, costs)
	row("HiCuts sw / SA-1100", stHi.EnergyPerPacketJ, sa1100.NormalizedPowerW)

	swHy, err := hypercuts.Build(rules, hypercuts.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stHy := sa1100.MeasureClassification(swHy, trace, costs)
	row("HyperCuts sw / SA-1100", stHy.EnergyPerPacketJ, sa1100.NormalizedPowerW)

	// Accelerator.
	tree, err := core.Build(rules, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		log.Fatal(err)
	}
	img, err := tree.Encode()
	if err != nil {
		log.Fatal(err)
	}
	var asicE float64
	for _, dev := range []hwsim.Device{hwsim.ASIC, hwsim.FPGA} {
		sim, err := hwsim.New(img, dev)
		if err != nil {
			log.Fatal(err)
		}
		_, st := sim.Run(trace)
		row("accelerator / "+dev.Name, st.EnergyPerPacketJ, dev.PowerW)
		if dev.Name == hwsim.ASIC.Name {
			asicE = st.EnergyPerPacketJ
		}
	}

	// TCAM (every lookup is one search cycle).
	dev := tcam.Ayama10128at77
	row("TCAM / "+dev.Name, dev.EnergyPerSearchJ(), dev.PowerW())

	fmt.Println()
	fmt.Printf("energy saving, accelerator ASIC vs software HiCuts: %.0fx (paper: up to 7,773x)\n",
		stHi.EnergyPerPacketJ/asicE)

	// Storage efficiency: the other TCAM weakness (§1).
	_, exp, err := tcam.Build(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCAM storage efficiency on this ruleset: %.0f%% (%d rules -> %d ternary entries; paper cites 16-53%%)\n",
		exp.Efficiency*100, exp.Rules, exp.Entries)
	fmt.Printf("accelerator stores the same rules in %d bytes of plain SRAM words\n", tree.MemoryBytes())
}

func row(name string, joules, watts float64) {
	fmt.Printf("%-42s %14.3e %11.4g W\n", name, joules, watts)
}
