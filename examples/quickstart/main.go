// Quickstart: generate a ruleset, build the hardware accelerator's search
// structure, and classify a packet trace on the simulated ASIC.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A synthetic access-control list in the style of ClassBench's
	// acl1 seed (the paper's main evaluation workload).
	rules, err := repro.GenerateRuleset("acl1", 1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d rules; first rule: %s\n", len(rules), rules[0].String())

	// 2. Build the modified-HyperCuts search structure and load it into
	// the simulated 65 nm ASIC (226 MHz).
	acc, err := repro.BuildAccelerator(rules, repro.Config{Algorithm: repro.HyperCuts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search structure: %d memory words (%d bytes of the device's %d)\n",
		acc.Words(), acc.MemoryBytes(), 1024*600)
	fmt.Printf("worst-case lookup: %d cycles -> guaranteed %.0f packets/s on %s\n",
		acc.WorstCaseCycles(), acc.GuaranteedPPS(), acc.DeviceName())

	// 3. Classify one packet with full detail.
	trace := repro.GenerateTrace(rules, 50000, 43)
	match, latency, reads := acc.ClassifyDetailed(trace[0])
	fmt.Printf("first packet: matched rule %d in %d cycles (%d memory reads)\n",
		match, latency, reads)

	// 4. Run the whole trace and report throughput and energy.
	_, stats := acc.Run(trace)
	fmt.Printf("trace of %d packets: %.2f cycles/packet, %.1f Mpps, %.3e J/packet\n",
		stats.Packets, stats.AvgCyclesPerPacket, stats.PacketsPerSecond/1e6, stats.EnergyPerPacketJ)

	// 5. Sanity: the accelerator agrees with a linear-search reference.
	ref, err := repro.NewSoftwareBaseline("linear", rules)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range trace[:1000] {
		if acc.Classify(p) != ref.Classify(p) {
			log.Fatalf("mismatch at packet %d", i)
		}
	}
	fmt.Println("accelerator agrees with the linear-search reference on 1000 packets")
}
