// Linecard example: can the classifier keep up with the wire? The paper's
// motivation (§1) is that OC-192 (31.25 Mpps worst case) and OC-768
// (125 Mpps) line rates outrun software classifiers by orders of
// magnitude. This example checks, for each implementation, the highest
// SONET line it sustains under worst-case minimum-size packets.
//
// Run with:
//
//	go run ./examples/linecard
package main

import (
	"fmt"
	"log"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/sa1100"
)

func main() {
	rules := classbench.Generate(classbench.ACL1(), 2191, 2008)
	trace := classbench.GenerateTrace(rules, 20000, 2009)

	fmt.Printf("workload: acl1, %d rules; line-rate targets: OC-192 = %.2f Mpps, OC-768 = %.2f Mpps\n\n",
		len(rules), energy.OC192.WorstCasePPS()/1e6, energy.OC768.WorstCasePPS()/1e6)

	// Software on the StrongARM SA-1100 (paper's software platform).
	sw, err := hicuts.Build(rules, hicuts.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	swStats := sa1100.MeasureClassification(sw, trace, sa1100.DefaultCosts())
	report("HiCuts software on SA-1100 @200MHz", swStats.PacketsPerSecond)

	// Hardware accelerator, FPGA and ASIC.
	tree, err := core.Build(rules, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		log.Fatal(err)
	}
	img, err := tree.Encode()
	if err != nil {
		log.Fatal(err)
	}
	for _, dev := range []hwsim.Device{hwsim.FPGA, hwsim.ASIC} {
		sim, err := hwsim.New(img, dev)
		if err != nil {
			log.Fatal(err)
		}
		_, st := sim.Run(trace)
		report(fmt.Sprintf("accelerator on %s @%.0fMHz (observed)", dev.Name, dev.FreqHz/1e6), st.PacketsPerSecond)
		guaranteed := hwsim.WorstCaseThroughputPPS(dev, tree.WorstCaseCycles())
		report(fmt.Sprintf("accelerator on %s (worst-case guarantee)", dev.Name), guaranteed)
	}

	fmt.Println("\nthe paper's conclusion: the FPGA exceeds OC-192 and the ASIC exceeds")
	fmt.Println("OC-768, while software peaks thousands of times below either line.")
}

func report(name string, pps float64) {
	fmt.Printf("%-55s %12.0f pps -> %s\n", name, pps, energy.HighestLine(pps))
}
